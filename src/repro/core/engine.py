"""The user-facing database façade.

:class:`Database` wires the whole stack together: an extended relational
theory updated by GUA, an update journal, optional periodic simplification,
the query layer, and the SQL-ish front end.  This is the object a downstream
user of the library holds::

    db = Database(schema=schema_from_dict({"Orders": [...]}), auto_tag=True)
    db.update("INSERT Orders(700,32,9) | Orders(700,33,9) WHERE T")
    db.ask("Orders(700,32,9)")          # -> possible
    db.update("ASSERT Orders(700,32,9)")
    db.ask("Orders(700,32,9)")          # -> certain
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.gua import GuaExecutor, GuaResult
from repro.core.simplification import AutoSimplifier, SimplificationReport, simplify_theory
from repro.core.transaction import TransactionManager
from repro.errors import InconsistentTheoryError
from repro.ldml.ast import GroundUpdate, Insert
from repro.ldml.parser import parse_script, parse_update
from repro.ldml.sql import translate_sql
from repro.logic.syntax import Formula
from repro.query.answers import Answer, ask as ask_theory
from repro.query.select import SelectedRow, select as select_theory
from repro.theory.dependencies import TemplateDependency
from repro.theory.schema import DatabaseSchema
from repro.theory.theory import ExtendedRelationalTheory
from repro.theory.worlds import AlternativeWorld


class Database:
    """An incomplete-information database under LDML updates via GUA."""

    def __init__(
        self,
        schema: Optional[DatabaseSchema] = None,
        dependencies: Sequence[TemplateDependency] = (),
        facts: Sequence[Union[Formula, str]] = (),
        *,
        auto_tag: bool = True,
        simplify_every: Optional[int] = None,
        entailment_mode: str = "conjunct",
    ):
        """Args:
            schema: optional database schema (enables type axioms and the
                attribute-tagging layer).
            dependencies: dependency axioms to enforce.
            facts: initial non-axiomatic wffs.
            auto_tag: apply the Section 3.5 "type and dependency layer" to
                INSERT/MODIFY bodies (conjoin attribute atoms) so type
                axioms never silently drop freshly inserted worlds.
            simplify_every: run the Section 4 simplifier every N updates
                (None = only on explicit :meth:`simplify` calls).
            entailment_mode: Step 5 test — "conjunct" (paper's optimized
                form) or "full".
        """
        self.theory = ExtendedRelationalTheory(
            schema=schema, dependencies=dependencies, formulas=facts
        )
        self.auto_tag = auto_tag and schema is not None
        self._executor = GuaExecutor(
            self.theory, entailment_mode=entailment_mode
        )
        self.transactions = TransactionManager(self.theory)
        self._simplifier = (
            AutoSimplifier(simplify_every) if simplify_every else None
        )
        # Per-savepoint simplifier state (update-counter phase, report
        # count) so rollback restores the whole engine, not just the theory.
        self._simplifier_marks: Dict[str, Tuple[int, int]] = {}

    # -- updates ---------------------------------------------------------------

    def update(self, statement: Union[GroundUpdate, str]) -> GuaResult:
        """Apply one LDML update through GUA.

        Statements containing ``?var`` variables — either strings or
        :class:`~repro.ldml.open_updates.OpenUpdate` objects — are open
        updates: they are grounded over the theory's atom universe and
        executed as one simultaneous set of ground updates (Section 4's
        reduction).
        """
        from repro.ldml.open_updates import OpenUpdate

        if isinstance(statement, str):
            if "?" in statement:
                return self.update_open(statement)
            update = parse_update(statement)
        elif isinstance(statement, OpenUpdate):
            # An OpenUpdate is not a GroundUpdate: it has no .to_insert()
            # and must go through the grounding path, ground or not.
            return self.update_open(statement)
        else:
            update = statement
        update = self._tagged(update)
        result = self._executor.apply(update)
        self.transactions.log.record(result.update, self.theory.size())
        if self._simplifier is not None:
            self._simplifier.after_update(self.theory)
        return result

    def update_open(self, statement: Union["OpenUpdate", str], domains=None) -> GuaResult:
        """Apply an LDML update with variables (see
        :mod:`repro.ldml.open_updates`)."""
        from repro.ldml.open_updates import OpenUpdate, parse_open_update
        from repro.ldml.simultaneous import SimultaneousInsert

        open_update = (
            parse_open_update(statement)
            if isinstance(statement, str)
            else statement
        )
        simultaneous = open_update.expand(self.theory, domains)
        if self.auto_tag:
            simultaneous = SimultaneousInsert(
                [
                    (where, self.theory.schema.tag_with_attributes(body))
                    for where, body in simultaneous.pairs
                ]
            )
        result = self._executor.apply_simultaneous(simultaneous)
        # Journal the simultaneous set itself: replaying the synthetic joint
        # INSERT stored in result.update would conjoin all bodies
        # unconditionally — different semantics.
        self.transactions.log.record(simultaneous, self.theory.size())
        if self._simplifier is not None:
            self._simplifier.after_update(self.theory)
        return result

    def run_script(self, script: str) -> List[GuaResult]:
        """Apply a ';'-separated LDML script."""
        return [self.update(u) for u in parse_script(script)]

    def sql(self, statement: str) -> GuaResult:
        """Apply one SQL-ish statement (see :mod:`repro.ldml.sql`)."""
        return self.update(translate_sql(statement, self.theory.schema))

    def _tagged(self, update: GroundUpdate) -> GroundUpdate:
        """The Section 3.5 attribute-tagging layer."""
        if not self.auto_tag:
            return update
        insert = update.to_insert()
        schema = self.theory.schema
        assert schema is not None
        tagged_body = schema.tag_with_attributes(insert.body)
        if tagged_body is insert.body:
            return insert
        return Insert(tagged_body, insert.where)

    # -- queries ---------------------------------------------------------------

    def ask(self, query: Union[Formula, str]) -> Answer:
        """Three-valued answer: certain / possible / impossible."""
        return ask_theory(self.theory, query)

    def is_certain(self, query: Union[Formula, str]) -> bool:
        return self.ask(query).certain

    def is_possible(self, query: Union[Formula, str]) -> bool:
        return self.ask(query).possible

    def select(self, relation: str, **kwargs) -> List[SelectedRow]:
        """Tuple membership with certainty status for one relation."""
        return select_theory(self.theory, relation, **kwargs)

    def explain(self, query: Union[Formula, str]):
        """Witness worlds for a query: ``(world_where_true, world_where_false)``.

        Either component is None when no such world exists (so a certain
        query has ``(world, None)``, an impossible one ``(None, world)``).
        """
        from repro.query.answers import witness_world

        return (
            witness_world(self.theory, query, holds=True),
            witness_world(self.theory, query, holds=False),
        )

    def find(self, query: str, **kwargs):
        """Answer a query with ``?var`` variables: bindings with status.

        >>> db.find("Emp(?x, sales)")   # doctest: +SKIP
        [AnswerRow(binding=(('x', alice),), status='certain'), ...]
        """
        from repro.query.open_queries import parse_open_query

        return parse_open_query(query).answers(self.theory, **kwargs)

    def worlds(self) -> List[AlternativeWorld]:
        """Materialize the world set (exponential in the incompleteness)."""
        return sorted(
            self.theory.alternative_worlds(), key=lambda w: sorted(map(str, w))
        )

    def world_count(self, cap: Optional[int] = None) -> int:
        return self.theory.world_count(cap=cap)

    def is_consistent(self) -> bool:
        return self.theory.is_consistent()

    def check_consistent(self) -> None:
        if not self.is_consistent():
            raise InconsistentTheoryError(
                "the theory has no models — a previous ASSERT/INSERT "
                "contradicted everything; roll back or rebuild"
            )

    # -- maintenance ---------------------------------------------------------------

    def simplify(self, **options) -> SimplificationReport:
        """Run the Section 4 simplifier now."""
        return simplify_theory(self.theory, **options)

    def statistics(self) -> Dict[str, int]:
        """Engine-wide health metrics: theory sizes (see
        :meth:`ExtendedRelationalTheory.statistics`), solver work counters
        (``sat_*``), per-wff clause-cache traffic (``tseitin_cache_*``),
        and ``updates_applied``."""
        stats = dict(self.theory.statistics())
        stats.update(self.theory.solver_statistics())
        stats["updates_applied"] = len(self.transactions.log)
        return stats

    def savepoint(self, name: str) -> None:
        self.transactions.savepoint(name, self.theory)
        if self._simplifier is not None:
            self._simplifier_marks[name] = self._simplifier.mark()

    def rollback(self, name: str) -> None:
        restored = self.transactions.rollback(name)
        # Swap theory contents in place so executor/log keep working.
        self.theory.replace_formulas(restored.formulas())
        # Axiom instances added after the savepoint are gone from the
        # section; drop the dedup registry so they can be re-added.
        if hasattr(self.theory, "_axiom_instances"):
            delattr(self.theory, "_axiom_instances")
        # Re-sync the auto-simplifier with the restored timeline: its
        # update counter and report list must match the savepoint, or the
        # next update would simplify too early/late (or report phantom
        # passes that the rollback undid).
        if self._simplifier is not None:
            mark = self._simplifier_marks.get(name)
            if mark is not None:
                self._simplifier.restore(mark)
            surviving = set(self.transactions.savepoint_names())
            self._simplifier_marks = {
                n: m for n, m in self._simplifier_marks.items() if n in surviving
            }

    def size(self) -> int:
        """Nodes in the stored non-axiomatic section."""
        return self.theory.size()

    def __repr__(self) -> str:
        return (
            f"Database({len(self.theory.stored_wffs())} wffs, "
            f"{len(self.transactions.log)} updates applied)"
        )
