"""The Section 4 strawman as a first-class backend: a log-structured store.

"It is in large part the possibility of heuristic simplification that makes
the LDML algorithms more attractive than simply keeping a record of past
updates and recomputing the state of the theory on each new query."

:class:`LogStructuredStore` is that alternative, implemented honestly so
the comparison is fair:

* an update is an O(1) append to the log — no GUA work at all;
* a query replays the log through GUA onto a copy of the base theory, then
  answers by SAT; the replayed theory is *memoized* until the next append,
  so query bursts pay the replay once;
* optional simplification during replay (every ``simplify_every`` updates)
  shows how Section 4's heuristics change the trade-off.

Experiment E12 measures both backends across update/query mixes; the shape
the paper predicts — the log store wins on write-heavy streams with rare
queries, loses as soon as queries are frequent — is asserted there.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.core.gua import GuaExecutor
from repro.core.simplification import simplify_theory
from repro.ldml.ast import GroundUpdate
from repro.ldml.parser import parse_update
from repro.ldml.simultaneous import SimultaneousInsert
from repro.logic.syntax import Formula
from repro.query.answers import Answer, ask
from repro.theory.theory import ExtendedRelationalTheory

#: What the log may hold: ground updates or normalized simultaneous sets.
LoggedUpdate = Union[GroundUpdate, SimultaneousInsert]


class LogStructuredStore:
    """Base theory + update log; state recomputed on demand."""

    def __init__(
        self,
        base: Optional[ExtendedRelationalTheory] = None,
        *,
        simplify_every: Optional[int] = None,
    ):
        self._base = (base or ExtendedRelationalTheory()).copy()
        self._log: List[LoggedUpdate] = []
        self._simplify_every = simplify_every
        self._materialized: Optional[ExtendedRelationalTheory] = None
        self.replays = 0  #: how many times the log has been replayed

    # -- writes: O(1) ---------------------------------------------------------

    def apply(self, update: Union[LoggedUpdate, str]) -> "LogStructuredStore":
        """Append to the log; invalidates the memoized state.

        Accepts ground updates and :class:`SimultaneousInsert` sets alike —
        replay dispatches through the same GUA executor as live execution.
        """
        if isinstance(update, str):
            update = parse_update(update)
        self._log.append(update)
        self._materialized = None
        return self

    def run_script(
        self, updates: Sequence[Union[LoggedUpdate, str]]
    ) -> "LogStructuredStore":
        for update in updates:
            self.apply(update)
        return self

    def __len__(self) -> int:
        return len(self._log)

    # -- reads: replay then SAT ---------------------------------------------------

    def materialize(self) -> ExtendedRelationalTheory:
        """The current theory: base replayed through the whole log.

        Memoized until the next append.
        """
        if self._materialized is None:
            theory = self._base.copy()
            executor = GuaExecutor(theory)
            for index, update in enumerate(self._log, start=1):
                executor.apply(update)
                if (
                    self._simplify_every
                    and index % self._simplify_every == 0
                ):
                    simplify_theory(theory)
            self._materialized = theory
            self.replays += 1
        return self._materialized

    def ask(self, query: Union[Formula, str]) -> Answer:
        return ask(self.materialize(), query)

    def is_certain(self, query: Union[Formula, str]) -> bool:
        return self.ask(query).certain

    def is_possible(self, query: Union[Formula, str]) -> bool:
        return self.ask(query).possible

    def world_set(self):
        return self.materialize().world_set()

    # -- maintenance ------------------------------------------------------------------

    def compact(self) -> None:
        """Fold the log into the base (checkpoint): future replays start
        from the materialized state."""
        self._base = self.materialize().copy()
        simplify_theory(self._base)
        self._log.clear()
        self._materialized = None

    def pending(self) -> int:
        """Log entries appended since the last compaction."""
        return len(self._log)

    def statistics(self) -> Dict[str, int]:
        """Store-level counters (cheap: never forces a replay)."""
        return {
            "log_pending": len(self._log),
            "log_replays": self.replays,
            "log_materialized": int(self._materialized is not None),
        }

    def __repr__(self) -> str:
        return (
            f"LogStructuredStore({len(self._log)} pending updates, "
            f"{self.replays} replays)"
        )
