"""Theory-level simplification (Section 4).

"Extended relational theories grow steadily longer under the update
algorithms ... A heuristic algorithm for simplification will be a vital part
of any implementation of these algorithms, and is at the core of the
implementation coded by the author."

The theory-level simplifier composes four world-set-preserving moves:

1. **Per-wff minimization** with the formula simplifier
   (:func:`repro.logic.simplify.simplify`).
2. **Unit propagation across wffs**: a unit literal wff conditions every
   other wff.
3. **Predicate-constant elimination**: a predicate constant is invisible in
   alternative worlds, so it may be existentially projected out.  If ``p``
   occurs in wffs ``F1..Fk`` only, they can be replaced by the Shannon
   expansion ``(F1&..&Fk)[p:=T] | (F1&..&Fk)[p:=F]``; the simplifier
   accepts the trade only when it shrinks the section (bounded fan-in keeps
   it from exploding).
4. **Universe preservation**: alternative worlds are valuations over the
   atoms *represented in the completion axioms*, so simplification must not
   silently drop a ground atom from the theory — two sections with equal
   logical content but different atom universes have different world sets
   (e.g. ``{f | !f}`` has two worlds, ``{}`` has one).  Any visible ground
   atom the rewrite dropped is re-added via the tautology ``f | !f``.

The net effect is measured by experiment E9: section size stays bounded
under long update streams with simplification on, and grows linearly (per
Section 3.6, O(g) per update) with it off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.logic.simplify import simplify as simplify_formula
from repro.logic.syntax import (
    FALSE,
    TRUE,
    Atom,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conjoin,
)
from repro.logic.terms import AtomLike, GroundAtom, PredicateConstant
from repro.logic.transform import condition, is_literal, literal_of
from repro.theory.theory import ExtendedRelationalTheory

#: Predicate-constant elimination is attempted only when the constant
#: occurs in at most this many wffs (keeps Shannon expansion bounded).
_ELIMINATION_FANIN = 4


@dataclass
class SimplificationReport:
    """What one simplification pass accomplished."""

    size_before: int
    size_after: int
    wffs_before: int
    wffs_after: int
    units_propagated: int = 0
    constants_eliminated: int = 0

    @property
    def shrink_ratio(self) -> float:
        if self.size_before == 0:
            return 1.0
        return self.size_after / self.size_before


def simplify_theory(
    theory: ExtendedRelationalTheory,
    *,
    eliminate_constants: bool = True,
    max_rounds: int = 8,
) -> SimplificationReport:
    """Simplify the theory's non-axiomatic section in place.

    World-set preserving: per-wff rewrites preserve logical equivalence of
    the section, predicate-constant elimination preserves the projection
    onto ground atoms, and the final universe-preservation step keeps the
    completion axioms' disjunct sets intact.
    """
    size_before = theory.size()
    wffs_before = len(theory.stored_wffs())
    original_universe = theory.atom_universe()

    formulas = list(theory.formulas())
    units_propagated = 0
    constants_eliminated = 0

    for _ in range(max_rounds):
        changed = False

        # 1. per-wff minimization + drop tautologies / collapse on F
        minimized: List[Formula] = []
        for formula in formulas:
            reduced = simplify_formula(formula)
            if isinstance(reduced, Top):
                changed = True
                continue
            if isinstance(reduced, Bottom):
                minimized = [FALSE]
                changed = True
                break
            if reduced != formula:
                changed = True
            minimized.append(reduced)
        formulas = minimized
        if formulas == [FALSE]:
            break

        # 2. unit propagation across wffs
        units = _collect_units(formulas)
        if units:
            propagated: List[Formula] = []
            for formula in formulas:
                if is_literal(formula):
                    propagated.append(formula)
                    continue
                conditioned = condition(formula, units)
                if conditioned != formula:
                    changed = True
                    units_propagated += 1
                if isinstance(conditioned, Top):
                    continue
                propagated.append(conditioned)
            formulas = propagated

        # Deduplicate identical wffs.
        deduped: List[Formula] = []
        seen: Set[Formula] = set()
        for formula in formulas:
            if formula in seen:
                changed = True
                continue
            seen.add(formula)
            deduped.append(formula)
        formulas = deduped

        # 3. predicate-constant elimination
        if eliminate_constants:
            formulas, eliminated = _eliminate_constants(formulas)
            if eliminated:
                constants_eliminated += eliminated
                changed = True

        if not changed:
            break

    # 4. universe preservation
    remaining_atoms: Set[GroundAtom] = set()
    for formula in formulas:
        remaining_atoms.update(formula.ground_atoms())
    for atom in sorted(original_universe - remaining_atoms):
        leaf = Atom(atom)
        formulas.append(Or((leaf, Not(leaf))))

    theory.replace_formulas(formulas)
    return SimplificationReport(
        size_before=size_before,
        size_after=theory.size(),
        wffs_before=wffs_before,
        wffs_after=len(theory.stored_wffs()),
        units_propagated=units_propagated,
        constants_eliminated=constants_eliminated,
    )


def _collect_units(formulas: List[Formula]) -> Dict[AtomLike, bool]:
    """Literal wffs give forced values (conflicts collapse to F upstream)."""
    units: Dict[AtomLike, bool] = {}
    for formula in formulas:
        if is_literal(formula):
            atom, polarity = literal_of(formula)
            if atom in units and units[atom] != polarity:
                return {}  # contradictory units: leave for the F-collapse
            units[atom] = polarity
    return units


def _eliminate_constants(
    formulas: List[Formula],
) -> Tuple[List[Formula], int]:
    """Project out low-fan-in predicate constants by Shannon expansion.

    Sound because predicate constants are invisible in alternative worlds:
    the world set is the projection of the models onto ground atoms, and
    ``exists p . (F1 & .. & Fk)`` over exactly the wffs containing ``p``
    equals ``(F1&..&Fk)[p:=T] | (F1&..&Fk)[p:=F]``.
    """
    eliminated = 0
    current = list(formulas)
    progress = True
    while progress:
        progress = False
        occurrences: Dict[PredicateConstant, List[int]] = {}
        for index, formula in enumerate(current):
            for pc in formula.predicate_constants():
                occurrences.setdefault(pc, []).append(index)
        for pc, indexes in sorted(occurrences.items(), key=lambda kv: str(kv[0])):
            if len(indexes) > _ELIMINATION_FANIN:
                continue
            group = conjoin([current[i] for i in indexes])
            expansion = simplify_formula(
                Or((condition(group, {pc: True}), condition(group, {pc: False})))
            )
            old_size = sum(current[i].size() for i in indexes)
            if expansion.size() > old_size:
                continue
            keep = [f for i, f in enumerate(current) if i not in set(indexes)]
            if not isinstance(expansion, Top):
                keep.append(expansion)
            current = keep
            eliminated += 1
            progress = True
            break
    return current, eliminated


class AutoSimplifier:
    """Policy object: simplify every *interval* updates (engine hook)."""

    def __init__(self, interval: int = 8, **options):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.options = options
        self._since_last = 0
        self.reports: List[SimplificationReport] = []

    def mark(self) -> Tuple[int, int]:
        """Opaque state capture (counter phase, reports seen) for rollback."""
        return (self._since_last, len(self.reports))

    def restore(self, mark: Tuple[int, int]) -> None:
        """Restore a :meth:`mark`: reset the update counter and drop reports
        produced after it, so a rollback rewinds the simplify cadence too."""
        since_last, report_count = mark
        self._since_last = since_last
        del self.reports[report_count:]

    def after_update(
        self, theory: ExtendedRelationalTheory
    ) -> Optional[SimplificationReport]:
        self._since_last += 1
        if self._since_last < self.interval:
            return None
        self._since_last = 0
        report = simplify_theory(theory, **self.options)
        self.reports.append(report)
        return report
