"""Certain and possible answers over an extended relational theory.

A ground query ``q`` against a database with incomplete information has two
natural answers (the standard notions Reiter's framework supports and that
the paper's "pooling the query results" step computes):

* ``q`` is **certain** iff it holds in *every* alternative world;
* ``q`` is **possible** iff it holds in *some* alternative world.

Both are decided by SAT over the theory's clauses — no world enumeration:

* possible(q)  <=>  section & q        is satisfiable;
* certain(q)   <=>  section & !q       is unsatisfiable.

Queries are wffs over L' — predicate constants are invisible and rejected
(Section 2: they "may not appear in any query posed to the database").
Query atoms outside the theory's atom universe are folded to F first (the
completion axioms make them false in every model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import QueryError
from repro.logic.cnf import tseitin
from repro.logic.parser import parse
from repro.logic.sat import Solver
from repro.logic.syntax import Bottom, Formula, Not, Top
from repro.logic.transform import condition
from repro.theory.theory import ExtendedRelationalTheory


@dataclass(frozen=True)
class Answer:
    """Three-valued answer to a ground query."""

    certain: bool
    possible: bool

    @property
    def status(self) -> str:
        if self.certain:
            return "certain"
        if self.possible:
            return "possible"
        return "impossible"

    def __str__(self) -> str:
        return self.status


def _prepare_query(
    theory: ExtendedRelationalTheory, query: Union[Formula, str]
) -> Formula:
    if isinstance(query, str):
        query = parse(query)
    if not isinstance(query, Formula):
        raise QueryError(f"expected a query formula, got {query!r}")
    if query.predicate_constants():
        raise QueryError(
            "queries may not mention predicate constants; they are invisible "
            "in alternative worlds"
        )
    universe = theory.atom_universe()
    outside = {
        atom: False for atom in query.ground_atoms() if atom not in universe
    }
    if outside:
        query = condition(query, outside)
    return query


def is_possible(
    theory: ExtendedRelationalTheory, query: Union[Formula, str]
) -> bool:
    """Does *query* hold in at least one alternative world?"""
    prepared = _prepare_query(theory, query)
    if isinstance(prepared, Top):
        return theory.is_consistent()
    if isinstance(prepared, Bottom):
        return False
    clauses = theory.clauses()
    encoded = tseitin(prepared, prefix="@q")
    clauses.extend(encoded.clauses)
    return Solver(clauses, stats=theory.sat_stats).solve() is not None


def is_certain(
    theory: ExtendedRelationalTheory, query: Union[Formula, str]
) -> bool:
    """Does *query* hold in every alternative world?

    Vacuously true for an inconsistent theory (no worlds), matching the
    logical reading ``T |= q``.
    """
    prepared = _prepare_query(theory, query)
    if isinstance(prepared, Top):
        return True
    negated = Not(prepared)
    clauses = theory.clauses()
    encoded = tseitin(negated, prefix="@q")
    clauses.extend(encoded.clauses)
    return Solver(clauses, stats=theory.sat_stats).solve() is None


def ask(theory: ExtendedRelationalTheory, query: Union[Formula, str]) -> Answer:
    """Full three-valued answer (two SAT calls, short-circuited)."""
    certain = is_certain(theory, query)
    if certain:
        # certain implies possible unless the theory is inconsistent.
        return Answer(certain=True, possible=theory.is_consistent())
    return Answer(certain=False, possible=is_possible(theory, query))


def witness_world(
    theory: ExtendedRelationalTheory,
    query: Union[Formula, str],
    *,
    holds: bool = True,
):
    """An alternative world where *query* is true (or, with
    ``holds=False``, false) — None when no such world exists.

    This is the "explain" primitive: a possible-but-not-certain answer is
    justified by one witness of each kind.  One SAT call; no enumeration.
    """
    from repro.theory.worlds import AlternativeWorld

    prepared = _prepare_query(theory, query)
    goal = prepared if holds else Not(prepared)
    if isinstance(goal, Top):
        goal_clauses = []
    elif isinstance(goal, Bottom):
        return None
    else:
        encoded = tseitin(goal, prefix="@w")
        goal_clauses = list(encoded.clauses)
    clauses = theory.clauses()
    clauses.extend(goal_clauses)
    model = Solver(clauses, stats=theory.sat_stats).solve()
    if model is None:
        return None
    universe = theory.atom_universe()
    return AlternativeWorld(
        atom for atom in universe if model.get(atom, False)
    )
