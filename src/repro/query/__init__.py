"""Query answering over incomplete information: certain/possible answers."""

from repro.query.answers import Answer, ask, is_certain, is_possible, witness_world
from repro.query.select import (
    SelectedRow,
    certain_tuples,
    possible_tuples,
    select,
)
from repro.query.open_queries import AnswerRow, OpenQuery, parse_open_query

__all__ = [
    "Answer",
    "ask",
    "is_certain",
    "is_possible",
    "witness_world",
    "SelectedRow",
    "certain_tuples",
    "possible_tuples",
    "select",
    "AnswerRow",
    "OpenQuery",
    "parse_open_query",
]
