"""Queries with variables: certain and possible answer *sets*.

The classic companion of null-value querying (Reiter's framework, which the
paper builds on): for an open query such as ``Emp(?x, sales)``, the

* **certain answers** are the bindings true in *every* alternative world;
* **possible answers** are the bindings true in *some* world.

Variables use the same ``?name`` surface syntax and the same
range-restriction rule as open updates: a variable's candidates come from
matching the query's atoms against the theory's atom universe (by the
completion axioms, no binding outside the candidates can make a positive
occurrence true).  Each candidate binding is decided by two SAT calls —
worlds are never enumerated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.ldml.open_updates import (
    VAR_PREFIX,
    _reject_user_prefix,
    _substitute,
    _SURFACE_VAR_RE,
    is_variable,
    variable_name,
)
from repro.logic.parser import parse
from repro.logic.syntax import Formula
from repro.logic.terms import Constant, GroundAtom
from repro.query.answers import ask
from repro.theory.theory import ExtendedRelationalTheory


@dataclass(frozen=True)
class AnswerRow:
    """One candidate binding with its certainty status."""

    binding: Tuple[Tuple[str, Constant], ...]  # sorted (variable, value)
    status: str  # "certain" | "possible" | "impossible"

    def values(self) -> Tuple[str, ...]:
        return tuple(str(value) for _, value in self.binding)

    def as_dict(self) -> Dict[str, Constant]:
        return dict(self.binding)


def parse_open_query(text: str) -> "OpenQuery":
    """Parse a query formula that may contain ``?var`` variables."""
    _reject_user_prefix(text)
    lowered = _SURFACE_VAR_RE.sub(lambda m: VAR_PREFIX + m.group(1), text)
    return OpenQuery(parse(lowered))


class OpenQuery:
    """A query template over variables (reserved constants)."""

    __slots__ = ("formula",)

    def __init__(self, formula: Formula):
        if formula.predicate_constants():
            raise QueryError(
                "queries may not mention predicate constants; they are "
                "invisible in alternative worlds"
            )
        object.__setattr__(self, "formula", formula)

    def __setattr__(self, key, value):
        raise AttributeError("OpenQuery is immutable")

    def variables(self) -> Tuple[str, ...]:
        names = set()
        for atom in self.formula.ground_atoms():
            for constant in atom.args:
                if is_variable(constant):
                    names.add(variable_name(constant))
        return tuple(sorted(names))

    def candidate_values(
        self, theory: ExtendedRelationalTheory
    ) -> Dict[str, Tuple[Constant, ...]]:
        candidates: Dict[str, set] = {name: set() for name in self.variables()}
        if not candidates:
            return {}
        by_predicate: Dict = {}
        for atom in theory.atom_universe():
            by_predicate.setdefault(atom.predicate, []).append(atom)
        for template_atom in self.formula.ground_atoms():
            variable_positions = [
                (index, variable_name(constant))
                for index, constant in enumerate(template_atom.args)
                if is_variable(constant)
            ]
            if not variable_positions:
                continue
            for universe_atom in by_predicate.get(template_atom.predicate, ()):
                if not _matches(template_atom, universe_atom):
                    continue
                for index, name in variable_positions:
                    candidates[name].add(universe_atom.args[index])
        return {
            name: tuple(sorted(values)) for name, values in candidates.items()
        }

    def bindings(
        self,
        theory: ExtendedRelationalTheory,
        domains: Optional[Mapping[str, Sequence[Constant]]] = None,
    ) -> Iterator[Dict[str, Constant]]:
        names = self.variables()
        if not names:
            yield {}
            return
        candidates = self.candidate_values(theory)
        pools = [
            tuple(domains[name])
            if domains is not None and name in domains
            else candidates.get(name, ())
            for name in names
        ]
        for combo in itertools.product(*pools):
            yield dict(zip(names, combo))

    def ground(self, binding: Mapping[str, Constant]) -> Formula:
        missing = set(self.variables()) - set(binding)
        if missing:
            raise QueryError(f"binding does not cover variables: {sorted(missing)}")
        return _substitute(self.formula, binding)

    # -- answers ------------------------------------------------------------------

    def answers(
        self,
        theory: ExtendedRelationalTheory,
        domains: Optional[Mapping[str, Sequence[Constant]]] = None,
        *,
        include_impossible: bool = False,
    ) -> List[AnswerRow]:
        """Every candidate binding with its certain/possible status."""
        names = self.variables()
        rows: List[AnswerRow] = []
        for binding in self.bindings(theory, domains):
            answer = ask(theory, self.ground(binding))
            if answer.status == "impossible" and not include_impossible:
                continue
            rows.append(
                AnswerRow(
                    binding=tuple(sorted(binding.items())),
                    status=answer.status,
                )
            )
        rows.sort(key=lambda row: row.values())
        return rows

    def certain_answers(
        self, theory: ExtendedRelationalTheory, **kwargs
    ) -> List[Tuple[str, ...]]:
        return [
            row.values()
            for row in self.answers(theory, **kwargs)
            if row.status == "certain"
        ]

    def possible_answers(
        self, theory: ExtendedRelationalTheory, **kwargs
    ) -> List[Tuple[str, ...]]:
        return [
            row.values()
            for row in self.answers(theory, **kwargs)
            if row.status in ("certain", "possible")
        ]

    def __repr__(self) -> str:
        text = str(self.formula)
        for name in self.variables():
            text = text.replace(VAR_PREFIX + name, "?" + name)
        return f"QUERY[{text}]"


def _matches(template_atom: GroundAtom, universe_atom: GroundAtom) -> bool:
    for template_constant, actual in zip(template_atom.args, universe_atom.args):
        if not is_variable(template_constant) and template_constant != actual:
            return False
    return True
