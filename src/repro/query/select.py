"""Select-style queries: tuple membership with certainty status.

Bridges the logical view back to the relational one: for a relation P, each
candidate tuple (an atom of P in the theory's atom universe — by the
completion axioms no other tuple can be true anywhere) is classified as

* ``certain``  — in P in every world,
* ``possible`` — in P in some but not all worlds,
* ``impossible`` — in P in no world (e.g. only ``!P(c)`` survives).

This is what "pooling the query results in a final step" (Section 3.2)
produces for the simplest membership queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.errors import QueryError
from repro.logic.syntax import Atom
from repro.logic.terms import Constant, Predicate
from repro.query.answers import ask
from repro.theory.theory import ExtendedRelationalTheory


@dataclass(frozen=True)
class SelectedRow:
    """One candidate tuple with its certainty status."""

    tuple: Tuple[Constant, ...]
    status: str  # "certain" | "possible" | "impossible"

    def values(self) -> Tuple[str, ...]:
        return tuple(str(c) for c in self.tuple)


def select(
    theory: ExtendedRelationalTheory,
    relation: Union[Predicate, str],
    *,
    include_impossible: bool = False,
) -> List[SelectedRow]:
    """Classify every candidate tuple of *relation*.

    Deterministic row order (the store's index order).  ``impossible`` rows
    are omitted by default: they correspond to tuples the theory mentions
    only negatively.
    """
    predicate = _resolve_predicate(theory, relation)
    rows: List[SelectedRow] = []
    for atom in theory.predicate_atoms(predicate):
        answer = ask(theory, Atom(atom))
        if answer.status == "impossible" and not include_impossible:
            continue
        rows.append(SelectedRow(tuple=atom.args, status=answer.status))
    return rows


def certain_tuples(
    theory: ExtendedRelationalTheory, relation: Union[Predicate, str]
) -> List[Tuple[Constant, ...]]:
    """Just the tuples present in every world."""
    return [
        row.tuple
        for row in select(theory, relation)
        if row.status == "certain"
    ]


def possible_tuples(
    theory: ExtendedRelationalTheory, relation: Union[Predicate, str]
) -> List[Tuple[Constant, ...]]:
    """Tuples present in at least one world (certain ones included)."""
    return [
        row.tuple
        for row in select(theory, relation)
        if row.status in ("certain", "possible")
    ]


def _resolve_predicate(
    theory: ExtendedRelationalTheory, relation: Union[Predicate, str]
) -> Predicate:
    if isinstance(relation, Predicate):
        return relation
    if theory.schema is not None:
        try:
            return theory.schema.relation(relation).predicate
        except Exception:  # fall through to the language lookup
            pass
    try:
        return theory.language.predicate(relation)
    except Exception:
        raise QueryError(f"unknown relation {relation!r}") from None
